#include "dr/world.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace asyncdr::dr {
namespace {

/// Trivial correct peer: queries everything and finishes.
struct QueryAllPeer final : Peer {
  void on_start() override { finish(query_range(0, n())); }
  void on_message(sim::PeerId, const sim::Payload&) override {}
};

/// Outputs the wrong array.
struct WrongPeer final : Peer {
  void on_start() override { finish(BitVec(n(), true)); }
  void on_message(sim::PeerId, const sim::Payload&) override {}
};

/// Never terminates.
struct StuckPeer final : Peer {
  void on_start() override {}
  void on_message(sim::PeerId, const sim::Payload&) override {}
};

Config small_cfg() {
  return Config{.n = 32, .k = 3, .beta = 0.34, .message_bits = 16, .seed = 1};
}

TEST(World, HappyPathReport) {
  World w(small_cfg(), BitVec(32));
  for (sim::PeerId i = 0; i < 3; ++i) w.set_peer(i, std::make_unique<QueryAllPeer>());
  const RunReport r = w.run();
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.all_terminated);
  EXPECT_TRUE(r.all_correct);
  EXPECT_EQ(r.query_complexity, 32u);
  EXPECT_EQ(r.total_queries, 96u);
  EXPECT_EQ(r.message_complexity, 0u);
  ASSERT_EQ(r.outputs.size(), 3u);
  EXPECT_EQ(r.outputs[0], BitVec(32));
}

TEST(World, DetectsWrongOutput) {
  World w(small_cfg(), BitVec(32));
  w.set_peer(0, std::make_unique<QueryAllPeer>());
  w.set_peer(1, std::make_unique<WrongPeer>());
  w.set_peer(2, std::make_unique<QueryAllPeer>());
  const RunReport r = w.run();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.all_correct);
  ASSERT_EQ(r.incorrect_peers.size(), 1u);
  EXPECT_EQ(r.incorrect_peers[0], 1u);
}

TEST(World, DetectsNonTermination) {
  World w(small_cfg(), BitVec(32));
  w.set_peer(0, std::make_unique<QueryAllPeer>());
  w.set_peer(1, std::make_unique<StuckPeer>());
  w.set_peer(2, std::make_unique<QueryAllPeer>());
  const RunReport r = w.run();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.all_terminated);
  ASSERT_EQ(r.unterminated_peers.size(), 1u);
  EXPECT_EQ(r.unterminated_peers[0], 1u);
}

TEST(World, FaultyPeersExcludedFromVerdictAndMetrics) {
  World w(small_cfg(), BitVec(32));
  w.set_peer(0, std::make_unique<QueryAllPeer>());
  w.set_peer(1, std::make_unique<WrongPeer>());
  w.set_peer(2, std::make_unique<QueryAllPeer>());
  w.mark_faulty(1);
  const RunReport r = w.run();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.total_queries, 64u);  // only the two nonfaulty peers count
}

TEST(World, FaultBudgetEnforced) {
  World w(small_cfg(), BitVec(32));  // t = 1
  w.mark_faulty(0);
  EXPECT_THROW(w.mark_faulty(1), contract_violation);
}

TEST(World, CrashedPeerNeverStarts) {
  World w(small_cfg(), BitVec(32));
  for (sim::PeerId i = 0; i < 3; ++i) w.set_peer(i, std::make_unique<QueryAllPeer>());
  w.schedule_crash_at(2, 0.0);
  const RunReport r = w.run();
  EXPECT_TRUE(r.ok());  // peer 2 is faulty, so its silence is fine
  EXPECT_EQ(r.per_peer_queries[2], 0u);
}

TEST(World, StartTimesRespected) {
  World w(small_cfg(), BitVec(32));
  for (sim::PeerId i = 0; i < 3; ++i) w.set_peer(i, std::make_unique<QueryAllPeer>());
  w.set_start_time(1, 5.0);
  const RunReport r = w.run();
  EXPECT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.time_complexity, 5.0);  // last termination at its start
}

TEST(World, RunOnlyOnce) {
  World w(small_cfg(), BitVec(32));
  for (sim::PeerId i = 0; i < 3; ++i) w.set_peer(i, std::make_unique<QueryAllPeer>());
  (void)w.run();
  EXPECT_THROW((void)w.run(), contract_violation);
}

TEST(World, MissingPeerRejected) {
  World w(small_cfg(), BitVec(32));
  w.set_peer(0, std::make_unique<QueryAllPeer>());
  EXPECT_THROW((void)w.run(), contract_violation);
}

TEST(World, InputLengthMustMatch) {
  EXPECT_THROW(World(small_cfg(), BitVec(31)), contract_violation);
}

TEST(World, ReportToStringMentionsVerdict) {
  World w(small_cfg(), BitVec(32));
  for (sim::PeerId i = 0; i < 3; ++i) w.set_peer(i, std::make_unique<QueryAllPeer>());
  const RunReport r = w.run();
  EXPECT_NE(r.to_string().find("ok=yes"), std::string::npos);
}

}  // namespace
}  // namespace asyncdr::dr
