// Crash-recovery invariants: a revived peer replays its journal, resumes
// querying only what it cannot prove, and NEVER claims a bit it did not
// durably download (checked against the source's own query accounting) —
// for every crash-point sentinel, and under journal loss/corruption.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adversary/crash_plan.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "dr/journal.hpp"
#include "dr/world.hpp"
#include "protocols/runner.hpp"

namespace asyncdr {
namespace {

using proto::RecoveryPlan;
using proto::Scenario;

dr::Config cfg_multi(std::uint64_t seed) {
  return dr::Config{
      .n = 1024, .k = 8, .beta = 0.5, .message_bits = 64, .seed = seed};
}

dr::Config cfg_one(std::uint64_t seed) {
  return dr::Config{
      .n = 512, .k = 8, .beta = 1.0 / 8, .message_bits = 64, .seed = seed};
}

TEST(Recovery, CrashOneWarmRestartRecovers) {
  Scenario s;
  s.cfg = cfg_one(11);
  s.honest = proto::make_crash_one();
  s.recovery.factory = proto::make_crash_one();
  s.crashes.add_at_time(3, 2.5);
  // The delay is measured from t=0; 3.0 + backoff lands safely after the
  // crash at 2.5 (a restart firing while the peer is still up is a no-op).
  s.crashes.add_restart_after(3, 3.0);
  const dr::RunReport r = proto::run_scenario(s);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.recovery.restarts, 1u);
  EXPECT_EQ(r.recovery.journal_replays, 1u);
  EXPECT_EQ(r.recovery.cold_fallbacks, 0u);
  EXPECT_GT(r.recovery.bits_recovered, 0u);
  EXPECT_GT(r.recovery.queries_saved, 0u);
}

TEST(Recovery, CrashMultiWarmRestartRecovers) {
  Scenario s;
  s.cfg = cfg_multi(12);
  s.honest = proto::make_crash_multi();
  s.recovery.factory = proto::make_crash_multi();
  s.crashes.add_at_time(5, 1.5);
  s.crashes.add_restart_after(5, 2.0);
  const dr::RunReport r = proto::run_scenario(s);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.recovery.restarts, 1u);
  EXPECT_EQ(r.recovery.journal_replays, 1u);
  EXPECT_GT(r.recovery.queries_saved, 0u);
}

// The acceptance invariant: killed at ANY journal sentinel, the revived
// peer's replayed claim is a subset of what it actually queried from the
// source — no over-claim, at the exact granularity the theorems count.
TEST(Recovery, NoOverClaimAtAnyCrashPoint) {
  const dr::CrashPoint points[] = {
      dr::CrashPoint::kAppendStart, dr::CrashPoint::kMidRecord,
      dr::CrashPoint::kAppendCommit, dr::CrashPoint::kCheckpoint};
  for (const dr::CrashPoint point : points) {
    Scenario s;
    s.cfg = cfg_multi(13);
    s.honest = proto::make_crash_multi();
    s.recovery.factory = proto::make_crash_multi();
    RecoveryPlan::CrashPointKill kill;
    kill.peer = 2;
    kill.point = point;
    kill.restart_delay = 1.0;
    s.recovery.kills.push_back(kill);
    s.instrument = [](dr::World& w) {
      // asyncdr-lint: allow(DR003) test harness checking query accounting
      w.source().enable_index_recording(true);
    };
    bool checked = false;
    s.post_run = [&](dr::World& w, const dr::RunReport& r) {
      const dr::JournalReplay replay =
          dr::Journal::replay(w.journal_store().log(2), w.config().n);
      IntervalSet claimed = replay.intervals;
      claimed.subtract(w.source().queried_indices(2));
      EXPECT_TRUE(claimed.empty())
          << "over-claim at " << dr::to_string(point) << ": "
          << claimed.to_string();
      checked = true;
      EXPECT_TRUE(r.ok()) << dr::to_string(point) << ": " << r.to_string();
    };
    const dr::RunReport r = proto::run_scenario(s);
    EXPECT_TRUE(checked);
    EXPECT_EQ(r.recovery.restarts, 1u) << dr::to_string(point);
  }
}

// The A/B behind BENCH_recovery.json: identical crash/restart schedule,
// only the journal replay differs — warm must issue strictly fewer queries.
TEST(Recovery, WarmIssuesStrictlyFewerQueriesThanCold) {
  const auto run = [](bool cold) {
    Scenario s;
    s.cfg = cfg_multi(14);
    s.honest = proto::make_crash_multi();
    s.recovery.factory = proto::make_crash_multi();
    s.recovery.options.cold_restart = cold;
    s.crashes.add_at_time(1, 1.0);
    s.crashes.add_at_time(6, 2.0);
    s.crashes.add_restart_after(1, 4.0);
    s.crashes.add_restart_after(6, 5.0);
    return proto::run_scenario(s);
  };
  const dr::RunReport warm = run(false);
  const dr::RunReport cold = run(true);
  ASSERT_TRUE(warm.ok()) << warm.to_string();
  ASSERT_TRUE(cold.ok()) << cold.to_string();
  EXPECT_LT(warm.query_complexity, cold.query_complexity);
  EXPECT_LT(warm.total_queries, cold.total_queries);
  EXPECT_GT(warm.recovery.queries_saved, 0u);
  EXPECT_EQ(cold.recovery.queries_saved, 0u);
  EXPECT_GT(warm.recovery.journal_replays, 0u);
  EXPECT_EQ(cold.recovery.journal_replays, 0u);
  EXPECT_EQ(cold.recovery.cold_fallbacks, 2u);
}

TEST(Recovery, BackoffIsCappedExponential) {
  dr::RecoveryOptions o;
  o.base_delay = 0.5;
  o.backoff_factor = 2.0;
  o.max_delay = 8.0;
  EXPECT_DOUBLE_EQ(o.backoff(0), 0.5);
  EXPECT_DOUBLE_EQ(o.backoff(1), 1.0);
  EXPECT_DOUBLE_EQ(o.backoff(3), 4.0);
  EXPECT_DOUBLE_EQ(o.backoff(4), 8.0);   // hits the cap exactly
  EXPECT_DOUBLE_EQ(o.backoff(20), 8.0);  // and stays there
}

TEST(Recovery, FlappingPeerConverges) {
  Scenario s;
  s.cfg = cfg_multi(15);
  s.honest = proto::make_crash_multi();
  s.recovery.factory = proto::make_crash_multi();
  Rng rng(99);
  s.crashes = adv::CrashPlan::flapping(s.cfg, rng, /*count=*/1, /*cycles=*/2,
                                       /*period=*/6.0, /*up_delay=*/1.5,
                                       /*jitter=*/0.5);
  const dr::RunReport r = proto::run_scenario(s);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.recovery.restarts, 2u);
  // The second resume replays a journal that already covers the array.
  EXPECT_GT(r.recovery.queries_saved, r.recovery.bits_recovered / 2);
}

TEST(Recovery, RestartStormAllRevivedPeersFinish) {
  Scenario s;
  s.cfg = cfg_multi(16);
  s.honest = proto::make_crash_multi();
  s.recovery.factory = proto::make_crash_multi();
  Rng rng(7);
  s.crashes = adv::CrashPlan::restart_storm(s.cfg, rng, /*count=*/4,
                                            /*spacing=*/1.0, /*storm_at=*/6.0,
                                            /*window=*/1.0);
  const dr::RunReport r = proto::run_scenario(s);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.recovery.restarts, 4u);
  EXPECT_TRUE(r.unterminated_peers.empty());
}

TEST(Recovery, ClearedJournalFallsBackColdAndStaysSafe) {
  Scenario s;
  s.cfg = cfg_multi(17);
  s.honest = proto::make_crash_multi();
  s.recovery.factory = proto::make_crash_multi();
  s.crashes.add_at_time(4, 1.0);
  s.crashes.add_restart_after(4, 3.0);
  RecoveryPlan::Corruption c;
  c.peer = 4;
  c.mode = RecoveryPlan::Corruption::Mode::kClear;
  c.at = 1.1;
  s.recovery.corruptions.push_back(c);
  const dr::RunReport r = proto::run_scenario(s);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.recovery.cold_fallbacks, 1u);
  EXPECT_EQ(r.recovery.queries_saved, 0u);
}

TEST(Recovery, TruncatedJournalIsDetectedAndStaysSafe) {
  Scenario s;
  s.cfg = cfg_multi(18);
  s.honest = proto::make_crash_multi();
  s.recovery.factory = proto::make_crash_multi();
  s.crashes.add_at_time(4, 1.0);
  s.crashes.add_restart_after(4, 3.0);
  RecoveryPlan::Corruption c;
  c.peer = 4;
  c.mode = RecoveryPlan::Corruption::Mode::kTruncateTail;
  c.amount = 3;  // rip through the last record's CRC
  c.at = 1.1;
  s.recovery.corruptions.push_back(c);
  s.instrument = [](dr::World& w) {
    // asyncdr-lint: allow(DR003) test harness checking query accounting
    w.source().enable_index_recording(true);
  };
  s.post_run = [](dr::World& w, const dr::RunReport&) {
    const dr::JournalReplay replay =
        dr::Journal::replay(w.journal_store().log(4), w.config().n);
    IntervalSet claimed = replay.intervals;
    claimed.subtract(w.source().queried_indices(4));
    EXPECT_TRUE(claimed.empty()) << claimed.to_string();
  };
  const dr::RunReport r = proto::run_scenario(s);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.recovery.torn_tails, 1u);
}

TEST(Recovery, MaxRestartsZeroLeavesPeerDead) {
  Scenario s;
  s.cfg = cfg_multi(19);
  s.honest = proto::make_crash_multi();
  s.recovery.factory = proto::make_crash_multi();
  s.recovery.options.max_restarts = 0;
  s.crashes.add_at_time(2, 1.0);
  s.crashes.add_restart_after(2, 1.0);
  const dr::RunReport r = proto::run_scenario(s);
  EXPECT_TRUE(r.ok()) << r.to_string();  // peer 2 is faulty; staying dead is fine
  EXPECT_EQ(r.recovery.restarts, 0u);
}

TEST(Recovery, RestartInstructionsRequireRecoveryFactory) {
  Scenario s;
  s.cfg = cfg_multi(20);
  s.honest = proto::make_crash_multi();
  s.crashes.add_at_time(2, 1.0);
  s.crashes.add_restart_after(2, 1.0);  // but no s.recovery.factory
  EXPECT_THROW((void)proto::run_scenario(s), contract_violation);
}

TEST(Recovery, DeterministicAcrossRuns) {
  const auto run = [] {
    Scenario s;
    s.cfg = cfg_multi(21);
    s.honest = proto::make_crash_multi();
    s.recovery.factory = proto::make_crash_multi();
    Rng rng(5);
    s.crashes = adv::CrashPlan::restart_storm(s.cfg, rng, 3, 1.0, 5.0, 1.5);
    return proto::run_scenario(s);
  };
  const dr::RunReport a = run();
  const dr::RunReport b = run();
  EXPECT_EQ(a.query_complexity, b.query_complexity);
  EXPECT_DOUBLE_EQ(a.time_complexity, b.time_complexity);
  EXPECT_EQ(a.message_complexity, b.message_complexity);
  EXPECT_EQ(a.recovery.queries_saved, b.recovery.queries_saved);
  EXPECT_EQ(a.recovery.bits_recovered, b.recovery.bits_recovered);
}

}  // namespace
}  // namespace asyncdr
