// Cross-checks between independently maintained counters: the report's
// aggregate query measures vs its per-peer array vs the source's own
// served-bits counter, across crash and Byzantine scenarios. Also pins the
// StallReport rendering with golden strings on fully deterministic runs.
#include "dr/world.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>

#include "protocols/runner.hpp"

namespace asyncdr::dr {
namespace {

/// Sums per_peer_queries over the nonfaulty peers only (the population the
/// aggregate measures are defined over).
std::uint64_t nonfaulty_sum(const RunReport& report,
                            const proto::Scenario& s) {
  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < report.per_peer_queries.size(); ++p) {
    bool faulty = false;
    for (sim::PeerId b : s.byz_ids) faulty |= (b == p);
    for (const adv::CrashSpec& crash : s.crashes.specs()) {
      faulty |= (crash.peer == p);
    }
    if (!faulty) sum += report.per_peer_queries[p];
  }
  return sum;
}

TEST(Accounting, CrashScenarioTotalsReconcile) {
  proto::Scenario s;
  s.cfg = Config{.n = 4096, .k = 12, .beta = 0.5, .message_bits = 256,
                 .seed = 41};
  s.honest = proto::make_crash_multi();
  s.crashes = adv::CrashPlan::silent_prefix(s.cfg.max_faulty());

  std::uint64_t served = 0;
  std::uint64_t all_peer_bits = 0;
  s.post_run = [&](World& world, const RunReport& report) {
    served = world.source().total_bits_served();
    all_peer_bits = std::accumulate(report.per_peer_queries.begin(),
                                    report.per_peer_queries.end(),
                                    std::uint64_t{0});
  };
  const RunReport report = proto::run_scenario(s);
  ASSERT_TRUE(report.ok()) << report.to_string();

  // total_queries is defined over nonfaulty peers only.
  EXPECT_EQ(report.total_queries, nonfaulty_sum(report, s));
  // The source's own independent counter covers every peer, faulty or not.
  EXPECT_EQ(served, all_peer_bits);
  // Q is the max entry of the per-peer array over nonfaulty peers.
  for (std::size_t p = 0; p < report.per_peer_queries.size(); ++p) {
    if (p < s.crashes.size()) continue;  // the silent prefix
    EXPECT_LE(report.per_peer_queries[p], report.query_complexity);
  }
}

TEST(Accounting, ByzantineScenarioTotalsReconcile) {
  proto::Scenario s;
  s.cfg = Config{.n = 1024, .k = 13, .beta = 0.3, .message_bits = 256,
                 .seed = 43};
  s.honest = proto::make_committee();
  s.byzantine =
      proto::make_committee_liar(proto::CommitteeLiarPeer::Mode::kFlipAll);
  s.byz_ids = proto::pick_faulty(s.cfg, s.cfg.max_faulty());

  std::uint64_t served = 0;
  std::uint64_t all_peer_bits = 0;
  s.post_run = [&](World& world, const RunReport& report) {
    served = world.source().total_bits_served();
    all_peer_bits = std::accumulate(report.per_peer_queries.begin(),
                                    report.per_peer_queries.end(),
                                    std::uint64_t{0});
  };
  const RunReport report = proto::run_scenario(s);
  ASSERT_TRUE(report.ok()) << report.to_string();

  // Byzantine peers query too (liars must know the data to flip it); the
  // aggregate excludes them while the source's counter does not.
  EXPECT_EQ(report.total_queries, nonfaulty_sum(report, s));
  EXPECT_EQ(served, all_peer_bits);
  EXPECT_GE(served, report.total_queries);
}

TEST(Accounting, SourceCounterResetsWithAccounting) {
  Source source(BitVec(64), /*k=*/2);
  EXPECT_EQ(source.total_bits_served(), 0u);
  (void)source.query_range(0, 0, 64);
  EXPECT_EQ(source.total_bits_served(), 64u);
  source.reset_accounting();
  EXPECT_EQ(source.total_bits_served(), 0u);
}

// ---------------------------------------------------------------------------
// StallReport goldens. These scenarios exchange no messages, so every field
// of the rendering — times included — is deterministic.

struct QueryAllPeer final : Peer {
  void on_start() override { finish(query_range(0, n())); }
  void on_message(sim::PeerId, const sim::Payload&) override {}
};

struct ListenerPeer final : Peer {
  void on_start() override {}
  void on_message(sim::PeerId, const sim::Payload&) override {}
  std::string status() const override { return "listening forever"; }
};

Config golden_cfg() {
  return Config{.n = 32, .k = 3, .beta = 0.34, .message_bits = 16, .seed = 1};
}

TEST(StallGolden, QuiescentIncompleteRendering) {
  World w(golden_cfg(), BitVec(32));
  w.set_peer(0, std::make_unique<QueryAllPeer>());
  w.set_peer(1, std::make_unique<ListenerPeer>());
  w.set_peer(2, std::make_unique<QueryAllPeer>());
  const RunReport r = w.run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.stall,
            "StallReport{quiescent but incomplete, pending_events=0, "
            "crashed_peers=0}\n"
            "  stuck peer 1: last_send=never last_delivery=never "
            "bits_queried=0 status=\"listening forever\"\n");
}

TEST(StallGolden, TraceOverflowCutoffLineRendering) {
  World w(golden_cfg(), BitVec(32));
  w.set_peer(0, std::make_unique<QueryAllPeer>());
  w.set_peer(1, std::make_unique<ListenerPeer>());
  w.set_peer(2, std::make_unique<QueryAllPeer>());
  // Room for peer 0's query+terminate only; peer 2's query (also at t=0)
  // is the first dropped event.
  (void)w.enable_trace(/*capacity=*/2);
  const RunReport r = w.run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.stall,
            "StallReport{quiescent but incomplete, pending_events=0, "
            "crashed_peers=0}\n"
            "  stuck peer 1: last_send=never last_delivery=never "
            "bits_queried=0 status=\"listening forever\"\n"
            "  trace visibility ended at t=0 (the bounded trace overflowed; "
            "later events were not recorded)\n");
}

}  // namespace
}  // namespace asyncdr::dr
