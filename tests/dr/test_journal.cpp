#include "dr/journal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "common/check.hpp"
#include "common/interval_set.hpp"
#include "common/rng.hpp"

namespace asyncdr::dr {
namespace {

constexpr std::size_t kN = 256;

/// Appends `count` random bits records through a Journal handle and returns
/// the interval set and values they claimed. Record r stays inside its own
/// 40-bit slot so records never overlap: the truncation/corruption tests
/// below compare a replayed PREFIX of the log against the written state, and
/// with overlap a dropped later record would legitimately resurface the
/// earlier record's values — indistinguishable from an over-claim.
struct WrittenState {
  IntervalSet intervals;
  BitVec bits{kN};
};

WrittenState write_random_records(Journal& j, Rng& rng, std::size_t count) {
  constexpr std::size_t kSlot = 40;
  ASYNCDR_EXPECTS(count * kSlot <= kN);
  WrittenState w;
  for (std::size_t r = 0; r < count; ++r) {
    const std::size_t len = 1 + rng.below(32);
    const std::size_t lo = r * kSlot + rng.below(kSlot - len);
    const BitVec values = BitVec::generate(len, [&] { return rng.flip(); });
    EXPECT_TRUE(j.append_bits(lo, values));
    w.intervals.insert(lo, lo + len);
    for (std::size_t i = 0; i < len; ++i) w.bits.set(lo + i, values.get(i));
  }
  return w;
}

TEST(Journal, EmptyLogReplaysToNothing) {
  const JournalReplay r = Journal::replay({}, kN);
  EXPECT_TRUE(r.intervals.empty());
  EXPECT_EQ(r.records, 0u);
  EXPECT_FALSE(r.torn);
  EXPECT_EQ(r.discarded_bytes, 0u);
}

TEST(Journal, BitsRoundTrip) {
  JournalStore store(1);
  Journal j(store, 0);
  BitVec values(8);
  values.set(1, true);
  values.set(6, true);
  ASSERT_TRUE(j.append_bits(40, values));

  const JournalReplay r = Journal::replay(store.log(0), kN);
  EXPECT_EQ(r.records, 1u);
  EXPECT_FALSE(r.torn);
  EXPECT_EQ(r.intervals, IntervalSet::of(40, 48));
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(r.bits.get(40 + i), values.get(i)) << "bit " << i;
  }
}

TEST(Journal, CheckpointRoundTrip) {
  JournalStore store(1);
  Journal j(store, 0);
  ASSERT_TRUE(j.checkpoint("phase", 1));
  ASSERT_TRUE(j.checkpoint("round", 7));

  const JournalReplay r = Journal::replay(store.log(0), kN);
  EXPECT_EQ(r.records, 2u);
  ASSERT_EQ(r.checkpoints.size(), 2u);
  EXPECT_EQ(r.checkpoints[0], (std::pair<std::string, std::uint64_t>{"phase", 1}));
  EXPECT_EQ(r.checkpoints[1], (std::pair<std::string, std::uint64_t>{"round", 7}));
}

// Satellite property test: many random records, mixed with checkpoints,
// replay to exactly the written interval set and values.
TEST(Journal, PropertyRandomRecordsRoundTrip) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    JournalStore store(1);
    Journal j(store, 0);
    Rng rng(seed);
    WrittenState w;
    const std::size_t records = 1 + rng.below(24);
    for (std::size_t r = 0; r < records; ++r) {
      if (rng.flip(0.2)) {
        ASSERT_TRUE(j.checkpoint("phase", r));
        continue;
      }
      const std::size_t len = 1 + rng.below(32);
      const std::size_t lo = rng.below(kN - len);
      const BitVec values = BitVec::generate(len, [&] { return rng.flip(); });
      ASSERT_TRUE(j.append_bits(lo, values));
      w.intervals.insert(lo, lo + len);
      for (std::size_t i = 0; i < len; ++i) w.bits.set(lo + i, values.get(i));
    }

    const JournalReplay r = Journal::replay(store.log(0), kN);
    EXPECT_FALSE(r.torn) << "seed " << seed;
    EXPECT_EQ(r.intervals, w.intervals) << "seed " << seed;
    for (std::size_t i = 0; i < kN; ++i) {
      if (w.intervals.contains(i)) {
        EXPECT_EQ(r.bits.get(i), w.bits.get(i)) << "seed " << seed
                                                << " bit " << i;
      }
    }
  }
}

/// Replay of a prefix-truncated log must (a) never crash, (b) never claim a
/// bit the surviving complete records did not commit — for EVERY cut point.
TEST(Journal, TornTailAtEveryByteBoundaryNeverOverClaims) {
  JournalStore store(1);
  Journal j(store, 0);
  Rng rng(42);
  const WrittenState w = write_random_records(j, rng, 6);
  const std::vector<std::uint8_t> full = store.log(0);
  const JournalReplay whole = Journal::replay(full, kN);
  ASSERT_EQ(whole.intervals, w.intervals);

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(full.begin(), full.begin() + cut);
    const JournalReplay r = Journal::replay(prefix, kN);
    // No over-claim: everything recovered was genuinely written.
    IntervalSet extra = r.intervals;
    extra.subtract(w.intervals);
    EXPECT_TRUE(extra.empty()) << "cut at " << cut;
    // A mid-record cut is flagged torn; re-replaying just the verified
    // prefix must agree (self-consistency of the discarded_bytes report).
    if (r.torn) {
      ASSERT_GT(r.discarded_bytes, 0u);
      ASSERT_LE(r.discarded_bytes, prefix.size());
      const std::vector<std::uint8_t> verified(
          prefix.begin(), prefix.end() - static_cast<long>(r.discarded_bytes));
      const JournalReplay again = Journal::replay(verified, kN);
      EXPECT_FALSE(again.torn) << "cut at " << cut;
      EXPECT_EQ(again.intervals, r.intervals) << "cut at " << cut;
    }
    if (cut == full.size()) EXPECT_EQ(r.intervals, w.intervals);
    for (std::size_t i = 0; i < kN; ++i) {
      if (r.intervals.contains(i)) {
        EXPECT_EQ(r.bits.get(i), w.bits.get(i)) << "cut " << cut
                                                << " bit " << i;
      }
    }
  }
}

/// Single-bit corruption anywhere in the log: replay must detect (drop the
/// record and everything after), never crash, never over-claim values.
TEST(Journal, BitFlipAnywhereIsDetectedNeverOverClaims) {
  JournalStore store(1);
  Journal j(store, 0);
  Rng rng(7);
  const WrittenState w = write_random_records(j, rng, 4);
  const std::vector<std::uint8_t> full = store.log(0);

  for (std::size_t bit = 0; bit < full.size() * 8; ++bit) {
    std::vector<std::uint8_t> corrupt = full;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const JournalReplay r = Journal::replay(corrupt, kN);  // must not throw
    // Claimed bits must carry the written values: a flip either lands in a
    // record (CRC kills that record and the rest) or past the last verified
    // one. Either way no claimed position may hold a corrupted value.
    for (std::size_t i = 0; i < kN; ++i) {
      if (r.intervals.contains(i)) {
        ASSERT_TRUE(w.intervals.contains(i)) << "flip " << bit;
        ASSERT_EQ(r.bits.get(i), w.bits.get(i)) << "flip " << bit;
      }
    }
  }
}

TEST(JournalStore, CorruptionHelpers) {
  JournalStore store(2);
  Journal j(store, 1);
  ASSERT_TRUE(j.append_bits(0, BitVec(16, true)));
  const std::size_t len = store.bytes(1);
  ASSERT_GT(len, 4u);

  store.truncate_tail(1, 2);
  EXPECT_EQ(store.bytes(1), len - 2);
  const JournalReplay torn = Journal::replay(store.log(1), kN);
  EXPECT_TRUE(torn.torn);
  EXPECT_TRUE(torn.intervals.empty());

  store.clear(1);
  EXPECT_EQ(store.bytes(1), 0u);
  store.flip_bit(1, 12345);  // no-op on empty log, must not throw
  EXPECT_EQ(store.bytes(1), 0u);
  EXPECT_EQ(store.bytes(0), 0u);  // other peers untouched throughout
}

TEST(JournalStore, TruncateMoreThanLengthClears) {
  JournalStore store(1);
  Journal j(store, 0);
  ASSERT_TRUE(j.checkpoint("phase", 1));
  store.truncate_tail(0, store.bytes(0) + 100);
  EXPECT_EQ(store.bytes(0), 0u);
}

TEST(Journal, CrashPointHookKillsMidRecordAndLeavesTornTail) {
  JournalStore store(1);
  std::vector<CrashPoint> seen;
  store.set_crash_point_hook([&](sim::PeerId id, CrashPoint point) {
    EXPECT_EQ(id, 0u);
    seen.push_back(point);
    return point == CrashPoint::kMidRecord;
  });
  Journal j(store, 0);
  ASSERT_TRUE(j.checkpoint("phase", 1));  // survives: not a kMidRecord site
  const std::size_t committed = store.bytes(0);
  EXPECT_FALSE(j.append_bits(0, BitVec(16, true)));  // killed mid-write
  EXPECT_GT(store.bytes(0), committed);  // torn bytes really on "disk"

  const JournalReplay r = Journal::replay(store.log(0), kN);
  EXPECT_TRUE(r.torn);
  EXPECT_EQ(r.records, 1u);  // the checkpoint
  EXPECT_TRUE(r.intervals.empty());  // the torn record claims nothing
  ASSERT_GE(seen.size(), 2u);
}

TEST(Journal, CrashPointAppendStartWritesNothing) {
  JournalStore store(1);
  store.set_crash_point_hook([](sim::PeerId, CrashPoint point) {
    return point == CrashPoint::kAppendStart;
  });
  Journal j(store, 0);
  EXPECT_FALSE(j.append_bits(0, BitVec(8, true)));
  EXPECT_EQ(store.bytes(0), 0u);
}

TEST(Journal, CrashPointAppendCommitKeepsRecordDurable) {
  JournalStore store(1);
  store.set_crash_point_hook([](sim::PeerId, CrashPoint point) {
    return point == CrashPoint::kAppendCommit;
  });
  Journal j(store, 0);
  EXPECT_FALSE(j.append_bits(4, BitVec(8, true)));  // peer dies post-commit
  const JournalReplay r = Journal::replay(store.log(0), kN);
  EXPECT_FALSE(r.torn);
  EXPECT_EQ(r.intervals, IntervalSet::of(4, 12));  // but the record survives
}

TEST(Journal, Crc32KnownVector) {
  // The standard check value for CRC-32/ISO-HDLC: crc32("123456789").
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Journal::crc32(data, sizeof(data)), 0xCBF43926u);
}

TEST(JournalStore, LogAccessBoundsChecked) {
  JournalStore store(2);
  EXPECT_THROW((void)store.log(2), contract_violation);
  EXPECT_THROW(store.clear(5), contract_violation);
}

}  // namespace
}  // namespace asyncdr::dr
