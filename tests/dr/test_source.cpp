#include "dr/source.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/check.hpp"

namespace asyncdr::dr {
namespace {

TEST(Source, AnswersTruthfully) {
  Source src(BitVec::from_string("10110"), 3);
  EXPECT_TRUE(src.query(0, 0));
  EXPECT_FALSE(src.query(0, 1));
  EXPECT_EQ(src.query_range(1, 1, 3).to_string(), "011");
  EXPECT_EQ(src.query_indices(2, {4, 0}).to_string(), "01");
}

TEST(Source, AccountsPerPeerBits) {
  Source src(BitVec(100), 2);
  src.query(0, 5);
  src.query_range(0, 10, 20);
  src.query_indices(1, {1, 2, 3});
  EXPECT_EQ(src.bits_queried(0), 21u);
  EXPECT_EQ(src.bits_queried(1), 3u);
  src.reset_accounting();
  EXPECT_EQ(src.bits_queried(0), 0u);
}

TEST(Source, RepeatQueriesBilledAgain) {
  // Query complexity counts queries, not distinct bits learned.
  Source src(BitVec(10), 1);
  src.query(0, 3);
  src.query(0, 3);
  EXPECT_EQ(src.bits_queried(0), 2u);
}

TEST(Source, IndexRecording) {
  Source src(BitVec(50), 2);
  src.enable_index_recording(true);
  src.query(0, 7);
  src.query_range(0, 10, 5);
  const IntervalSet& q = src.queried_indices(0);
  EXPECT_TRUE(q.contains(7));
  EXPECT_TRUE(q.contains(12));
  EXPECT_FALSE(q.contains(8));
  EXPECT_EQ(q.count(), 6u);
}

TEST(Source, RecordingDisabledThrows) {
  Source src(BitVec(10), 1);
  EXPECT_THROW((void)src.queried_indices(0), contract_violation);
}

TEST(Source, OverlayRedirectsOnePeerOnly) {
  Source src(BitVec::from_string("0000"), 2);
  src.set_overlay(1, BitVec::from_string("1111"));
  EXPECT_FALSE(src.query(0, 2));
  EXPECT_TRUE(src.query(1, 2));
  // Accounting still applies to overlay queries.
  EXPECT_EQ(src.bits_queried(1), 1u);
  // Ground truth unchanged.
  EXPECT_EQ(src.data().to_string(), "0000");
}

TEST(Source, SetDataKeepsCounters) {
  Source src(BitVec::from_string("00"), 1);
  src.query(0, 0);
  src.set_data(BitVec::from_string("11"));
  EXPECT_TRUE(src.query(0, 0));
  EXPECT_EQ(src.bits_queried(0), 2u);
  EXPECT_THROW(src.set_data(BitVec(3)), contract_violation);
}

TEST(Source, BoundsChecked) {
  Source src(BitVec(8), 2);
  EXPECT_THROW(src.query(0, 8), contract_violation);
  EXPECT_THROW(src.query(2, 0), contract_violation);
  EXPECT_THROW(src.query_range(0, 5, 4), contract_violation);
  EXPECT_THROW(src.set_overlay(0, BitVec(9)), contract_violation);
}

TEST(Source, OutOfBoundsMessageNamesIndexAndArraySize) {
  Source src(BitVec(8), 2);
  try {
    src.query(0, 12);
    FAIL() << "expected contract_violation";
  } catch (const contract_violation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Source::query"), std::string::npos) << what;
    EXPECT_NE(what.find("index 12"), std::string::npos) << what;
    EXPECT_NE(what.find("n=8"), std::string::npos) << what;
  }
}

TEST(Source, QueryRangeRejectsOverflowingRanges) {
  Source src(BitVec(8), 1);
  const std::size_t huge = std::numeric_limits<std::size_t>::max();
  // lo + len wraps around; the naive `lo + len <= n` check would pass.
  EXPECT_THROW(src.query_range(0, 2, huge), contract_violation);
  EXPECT_THROW(src.query_range(0, huge, 2), contract_violation);
  EXPECT_THROW(src.query_range(0, 8, 1), contract_violation);
  // The full range is still fine.
  EXPECT_EQ(src.query_range(0, 0, 8).size(), 8u);
}

TEST(Source, QueryIndicesRejectsAnyOutOfRangeIndex) {
  Source src(BitVec(8), 1);
  EXPECT_THROW(src.query_indices(0, {0, 3, 8}), contract_violation);
  try {
    src.query_indices(0, {0, 3, 9});
    FAIL() << "expected contract_violation";
  } catch (const contract_violation& e) {
    EXPECT_NE(std::string(e.what()).find("index 9"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace asyncdr::dr
