#include "dr/config.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace asyncdr::dr {
namespace {

TEST(Config, MaxFaultyIsFloorBetaK) {
  Config cfg{.n = 10, .k = 10, .beta = 0.34};
  EXPECT_EQ(cfg.max_faulty(), 3u);
  cfg.beta = 0.5;
  EXPECT_EQ(cfg.max_faulty(), 5u);
  cfg.beta = 0.0;
  EXPECT_EQ(cfg.max_faulty(), 0u);
}

TEST(Config, FloatRepresentationDoesNotUndercount) {
  // 0.2 * 5 must give t = 1 despite 0.2 being inexact in binary.
  const Config cfg{.n = 10, .k = 5, .beta = 0.2};
  EXPECT_EQ(cfg.max_faulty(), 1u);
  const Config cfg2{.n = 10, .k = 15, .beta = 0.4};
  EXPECT_EQ(cfg2.max_faulty(), 6u);
}

TEST(Config, MinHonestComplementsMaxFaulty) {
  const Config cfg{.n = 16, .k = 12, .beta = 0.4};
  EXPECT_EQ(cfg.min_honest() + cfg.max_faulty(), cfg.k);
  EXPECT_EQ(cfg.min_honest(), 8u);
}

TEST(Config, ValidationRejectsBadValues) {
  Config cfg{.n = 16, .k = 4, .beta = 0.25};
  EXPECT_NO_THROW(cfg.validate());
  cfg.n = 0;
  EXPECT_THROW(cfg.validate(), contract_violation);
  cfg = {.n = 16, .k = 1, .beta = 0.0};
  EXPECT_THROW(cfg.validate(), contract_violation);
  cfg = {.n = 16, .k = 4, .beta = 1.0};
  EXPECT_THROW(cfg.validate(), contract_violation);
  cfg = {.n = 16, .k = 4, .beta = -0.1};
  EXPECT_THROW(cfg.validate(), contract_violation);
  cfg = {.n = 16, .k = 4, .beta = 0.25, .message_bits = 0};
  EXPECT_THROW(cfg.validate(), contract_violation);
}

TEST(Config, ToStringMentionsParameters) {
  const Config cfg{.n = 64, .k = 8, .beta = 0.25, .message_bits = 32, .seed = 5};
  const std::string s = cfg.to_string();
  EXPECT_NE(s.find("n=64"), std::string::npos);
  EXPECT_NE(s.find("k=8"), std::string::npos);
  EXPECT_NE(s.find("t=2"), std::string::npos);
}

}  // namespace
}  // namespace asyncdr::dr
